#include "core/ds_policies.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "fake_view.hpp"

namespace chicsim::core {
namespace {

using testing::FakeGridView;

/// Scriptable ReplicationContext recording replicate() calls.
class FakeReplicationContext final : public ReplicationContext {
 public:
  FakeReplicationContext(FakeGridView& view, data::SiteIndex self)
      : view_(view), self_(self) {}

  // --- test controls ---
  std::vector<data::DatasetId> popular_;
  std::map<data::DatasetId, data::SiteIndex> top_requester_;
  std::map<data::SiteIndex, std::size_t> inbound_;
  std::vector<std::pair<data::DatasetId, data::SiteIndex>> replicated_;
  std::vector<data::DatasetId> resets_;

  // --- ReplicationContext ---
  [[nodiscard]] data::SiteIndex self() const override { return self_; }
  [[nodiscard]] const GridView& view() const override { return view_; }
  void replicate(data::DatasetId d, data::SiteIndex to) override {
    replicated_.emplace_back(d, to);
  }
  [[nodiscard]] std::vector<data::DatasetId> popular_datasets(double threshold) const override {
    (void)threshold;
    return popular_;
  }
  void reset_popularity(data::DatasetId d) override { resets_.push_back(d); }
  [[nodiscard]] data::SiteIndex top_requester(data::DatasetId d) const override {
    auto it = top_requester_.find(d);
    return it == top_requester_.end() ? data::kNoSite : it->second;
  }
  [[nodiscard]] std::size_t inbound_replications(data::SiteIndex s) const override {
    auto it = inbound_.find(s);
    return it == inbound_.end() ? 0 : it->second;
  }

 private:
  FakeGridView& view_;
  data::SiteIndex self_;
};

TEST(DataDoNothing, NeverReplicates) {
  FakeGridView view(5, 3);
  FakeReplicationContext ctx(view, 0);
  ctx.popular_ = {0, 1, 2};
  util::Rng rng(1);
  DataDoNothingDs ds;
  ds.evaluate(ctx, rng);
  EXPECT_TRUE(ctx.replicated_.empty());
  EXPECT_TRUE(ctx.resets_.empty());
}

TEST(DataRandom, ReplicatesEachHotDatasetSomewhereElse) {
  FakeGridView view(6, 3);
  FakeReplicationContext ctx(view, 2);
  ctx.popular_ = {0, 1};
  util::Rng rng(2);
  DataRandomDs ds(10.0);
  ds.evaluate(ctx, rng);
  ASSERT_EQ(ctx.replicated_.size(), 2u);
  for (const auto& [d, to] : ctx.replicated_) {
    EXPECT_NE(to, 2u);  // never to self
    EXPECT_LT(to, 6u);
  }
  EXPECT_EQ(ctx.resets_, (std::vector<data::DatasetId>{0, 1}));
}

TEST(DataRandom, SkipsSitesAlreadyHolding) {
  FakeGridView view(3, 1);
  // Dataset 0 is held by self (2) and site 1; only site 0 is a valid target.
  view.place(0, 2);
  view.place(0, 1);
  FakeReplicationContext ctx(view, 2);
  ctx.popular_ = {0};
  util::Rng rng(3);
  DataRandomDs ds(10.0);
  ds.evaluate(ctx, rng);
  ASSERT_EQ(ctx.replicated_.size(), 1u);
  EXPECT_EQ(ctx.replicated_[0].second, 0u);
}

TEST(DataRandom, TwoSiteGridAlwaysReplicatesToTheOtherSite) {
  // Regression: the draw used to cover all sites and burn retry attempts on
  // self-collisions — on a 2-site grid every attempt failed with p = 1/2,
  // so a hot dataset could (rarely but legitimately) exhaust all 16 draws
  // and not replicate at all. The draw now excludes self, so the only other
  // site is picked with certainty regardless of the rng stream.
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    FakeGridView view(2, 1);
    FakeReplicationContext ctx(view, 0);
    ctx.popular_ = {0};
    util::Rng rng(seed);
    DataRandomDs ds(10.0);
    ds.evaluate(ctx, rng);
    ASSERT_EQ(ctx.replicated_.size(), 1u);
    EXPECT_EQ(ctx.replicated_[0].second, 1u);
  }
}

TEST(DataRandom, SelfIsNeverDrawn) {
  // Larger grid, self in the middle of the index range: the shifted draw
  // must map around self, never onto it, and cover every other site.
  FakeGridView view(5, 1);
  std::vector<bool> seen(5, false);
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    FakeReplicationContext ctx(view, 2);
    ctx.popular_ = {0};
    util::Rng rng(seed);
    DataRandomDs ds(10.0);
    ds.evaluate(ctx, rng);
    ASSERT_EQ(ctx.replicated_.size(), 1u);
    EXPECT_NE(ctx.replicated_[0].second, 2u);
    seen[ctx.replicated_[0].second] = true;
  }
  EXPECT_TRUE(seen[0] && seen[1] && seen[3] && seen[4]);
  EXPECT_FALSE(seen[2]);
}

TEST(DataRandom, SingleSiteGridDoesNothing) {
  FakeGridView view(1, 1);
  FakeReplicationContext ctx(view, 0);
  ctx.popular_ = {0};
  util::Rng rng(1);
  DataRandomDs ds(10.0);
  ds.evaluate(ctx, rng);
  EXPECT_TRUE(ctx.replicated_.empty());
}

TEST(DataRandom, FullySaturatedDatasetIsOnlyReset) {
  FakeGridView view(3, 1);
  view.place(0, 0);
  view.place(0, 1);
  view.place(0, 2);
  FakeReplicationContext ctx(view, 2);
  ctx.popular_ = {0};
  util::Rng rng(4);
  DataRandomDs ds(10.0);
  ds.evaluate(ctx, rng);
  EXPECT_TRUE(ctx.replicated_.empty());
  EXPECT_EQ(ctx.resets_, (std::vector<data::DatasetId>{0}));
}

TEST(DataLeastLoaded, PicksLeastLoadedNeighbor) {
  FakeGridView view(4, 2);
  view.loads_ = {9, 3, 0, 6};  // self = 0
  FakeReplicationContext ctx(view, 0);
  ctx.popular_ = {1};
  util::Rng rng(5);
  DataLeastLoadedDs ds(10.0);
  ds.evaluate(ctx, rng);
  ASSERT_EQ(ctx.replicated_.size(), 1u);
  EXPECT_EQ(ctx.replicated_[0].second, 2u);
}

TEST(DataLeastLoaded, CountsInboundReplicationsAsLoad) {
  FakeGridView view(4, 2);
  view.loads_ = {9, 3, 0, 6};
  FakeReplicationContext ctx(view, 0);
  ctx.popular_ = {1};
  ctx.inbound_[2] = 5;  // the cold site is already receiving 5 pushes
  util::Rng rng(6);
  DataLeastLoadedDs ds(10.0);
  ds.evaluate(ctx, rng);
  ASSERT_EQ(ctx.replicated_.size(), 1u);
  EXPECT_EQ(ctx.replicated_[0].second, 1u);  // load 3 beats load 0+5
}

TEST(DataLeastLoaded, SkipsNeighborsAlreadyHolding) {
  FakeGridView view(3, 1);
  view.loads_ = {5, 0, 1};  // self = 0; site 1 is coldest but holds the data
  view.place(0, 1);
  FakeReplicationContext ctx(view, 0);
  ctx.popular_ = {0};
  util::Rng rng(7);
  DataLeastLoadedDs ds(10.0);
  ds.evaluate(ctx, rng);
  ASSERT_EQ(ctx.replicated_.size(), 1u);
  EXPECT_EQ(ctx.replicated_[0].second, 2u);
}

TEST(DataLeastLoaded, RespectsNeighborList) {
  FakeGridView view(4, 1);
  view.loads_ = {9, 9, 0, 9};
  view.neighbors_[0] = {1, 3};  // site 2 (coldest) is not a known site
  FakeReplicationContext ctx(view, 0);
  ctx.popular_ = {0};
  util::Rng rng(8);
  DataLeastLoadedDs ds(10.0);
  ds.evaluate(ctx, rng);
  ASSERT_EQ(ctx.replicated_.size(), 1u);
  EXPECT_NE(ctx.replicated_[0].second, 2u);
}

TEST(DataBestClient, ReplicatesToTopRequester) {
  FakeGridView view(5, 2);
  FakeReplicationContext ctx(view, 1);
  ctx.popular_ = {0};
  ctx.top_requester_[0] = 4;
  util::Rng rng(9);
  DataBestClientDs ds(10.0);
  ds.evaluate(ctx, rng);
  ASSERT_EQ(ctx.replicated_.size(), 1u);
  EXPECT_EQ(ctx.replicated_[0], (std::pair<data::DatasetId, data::SiteIndex>{0, 4}));
}

TEST(DataBestClient, NoRequesterMeansNoPush) {
  FakeGridView view(5, 2);
  FakeReplicationContext ctx(view, 1);
  ctx.popular_ = {0};
  util::Rng rng(10);
  DataBestClientDs ds(10.0);
  ds.evaluate(ctx, rng);
  EXPECT_TRUE(ctx.replicated_.empty());
  EXPECT_EQ(ctx.resets_, (std::vector<data::DatasetId>{0}));
}

TEST(DataBestClient, SkipsRequesterAlreadyHolding) {
  FakeGridView view(5, 2);
  view.place(0, 4);
  FakeReplicationContext ctx(view, 1);
  ctx.popular_ = {0};
  ctx.top_requester_[0] = 4;
  util::Rng rng(11);
  DataBestClientDs ds(10.0);
  ds.evaluate(ctx, rng);
  EXPECT_TRUE(ctx.replicated_.empty());
}

TEST(DataFastSpread, EvaluateIsANoOp) {
  FakeGridView view(5, 2);
  FakeReplicationContext ctx(view, 1);
  ctx.popular_ = {0};
  util::Rng rng(12);
  DataFastSpreadDs ds;
  ds.evaluate(ctx, rng);
  EXPECT_TRUE(ctx.replicated_.empty());
}

TEST(DataFastSpread, PushesBesideTheRequesterOnRemoteFetch) {
  FakeGridView view(6, 2);
  view.neighbors_[4] = {3, 5};  // requester 4's region siblings
  FakeReplicationContext ctx(view, 1);
  util::Rng rng(13);
  DataFastSpreadDs ds;
  ds.on_remote_fetch(ctx, 0, /*requester=*/4, rng);
  ASSERT_EQ(ctx.replicated_.size(), 1u);
  EXPECT_TRUE(ctx.replicated_[0].second == 3u || ctx.replicated_[0].second == 5u);
}

TEST(DataFastSpread, NoCandidateMeansNoPush) {
  FakeGridView view(3, 1);
  view.neighbors_[2] = {1};
  view.place(0, 1);  // the only sibling already holds it
  FakeReplicationContext ctx(view, 1);
  util::Rng rng(14);
  DataFastSpreadDs ds;
  ds.on_remote_fetch(ctx, 0, /*requester=*/2, rng);
  EXPECT_TRUE(ctx.replicated_.empty());
}

TEST(DefaultOnRemoteFetchHook, DoesNothing) {
  FakeGridView view(3, 1);
  FakeReplicationContext ctx(view, 0);
  util::Rng rng(15);
  DataRandomDs ds(10.0);
  ds.on_remote_fetch(ctx, 0, 1, rng);
  EXPECT_TRUE(ctx.replicated_.empty());
}

}  // namespace
}  // namespace chicsim::core
