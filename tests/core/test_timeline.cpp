#include "core/timeline.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "core/grid.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace chicsim::core {
namespace {

SimulationConfig timeline_config() {
  SimulationConfig cfg;
  cfg.num_users = 12;
  cfg.num_sites = 6;
  cfg.num_regions = 3;
  cfg.num_datasets = 30;
  cfg.total_jobs = 120;
  cfg.storage_capacity_mb = 20000.0;
  cfg.es = EsAlgorithm::JobDataPresent;
  cfg.ds = DsAlgorithm::DataLeastLoaded;
  cfg.replication_threshold = 3.0;
  cfg.seed = 3;
  return cfg;
}

TEST(Timeline, SamplesAtConfiguredPeriod) {
  Grid grid(timeline_config());
  TimelineRecorder recorder(grid, 100.0);
  grid.run();
  const auto& samples = recorder.samples();
  ASSERT_GE(samples.size(), 3u);
  EXPECT_DOUBLE_EQ(samples[0].time, 0.0);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_NEAR(samples[i].time - samples[i - 1].time, 100.0, 1e-9);
  }
}

TEST(Timeline, CompletedJobsAreMonotone) {
  Grid grid(timeline_config());
  TimelineRecorder recorder(grid, 200.0);
  grid.run();
  recorder.sample_now();  // capture the final state explicitly
  const auto& samples = recorder.samples();
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].jobs_completed, samples[i - 1].jobs_completed);
  }
  EXPECT_EQ(samples.back().jobs_completed, 120u);
}

TEST(Timeline, ReplicaPopulationGrowsUnderActiveReplication) {
  Grid grid(timeline_config());
  TimelineRecorder recorder(grid, 200.0);
  grid.run();
  const auto& samples = recorder.samples();
  EXPECT_EQ(samples.front().total_replicas, 30u);  // one master per dataset
  EXPECT_GT(samples.back().total_replicas, 30u);
}

TEST(Timeline, BusyFractionIsAFraction) {
  Grid grid(timeline_config());
  TimelineRecorder recorder(grid, 150.0);
  grid.run();
  bool ever_busy = false;
  for (const auto& s : recorder.samples()) {
    EXPECT_GE(s.busy_fraction, 0.0);
    EXPECT_LE(s.busy_fraction, 1.0);
    ever_busy = ever_busy || s.busy_fraction > 0.0;
  }
  EXPECT_TRUE(ever_busy);
}

TEST(Timeline, QueueAndRunningCountsAreConsistent) {
  Grid grid(timeline_config());
  TimelineRecorder recorder(grid, 100.0);
  grid.run();
  for (const auto& s : recorder.samples()) {
    EXPECT_LE(s.max_site_queue, s.jobs_queued);
  }
}

TEST(Timeline, CsvRoundTripsThroughParser) {
  Grid grid(timeline_config());
  TimelineRecorder recorder(grid, 300.0);
  grid.run();
  std::ostringstream out;
  recorder.write_csv(out);
  util::CsvTable table = util::parse_csv_string(out.str());
  EXPECT_EQ(table.rows.size(), recorder.samples().size());
  EXPECT_EQ(table.column_index("total_replicas"), 5u);
}

TEST(Timeline, NonPositivePeriodThrows) {
  Grid grid(timeline_config());
  EXPECT_THROW(TimelineRecorder(grid, 0.0), util::SimError);
}

TEST(Timeline, DestructionBeforeRunIsSafe) {
  Grid grid(timeline_config());
  { TimelineRecorder recorder(grid, 100.0); }
  grid.run();  // the cancelled sampler must not fire
  EXPECT_EQ(grid.metrics().jobs_completed, 120u);
}

TEST(Timeline, DestructionMidRunIsSafe) {
  // Tearing the recorder down while its next sampling event is already on
  // the calendar must cancel that event, not leave a closure dangling over
  // freed recorder state.
  Grid grid(timeline_config());
  auto recorder = std::make_unique<TimelineRecorder>(grid, 50.0);
  grid.engine().schedule_at(175.0, [&recorder] { recorder.reset(); });
  grid.run();
  EXPECT_EQ(recorder, nullptr);
  EXPECT_EQ(grid.metrics().jobs_completed, 120u);
}

TEST(Timeline, SamplesStopAtDestruction) {
  Grid grid(timeline_config());
  auto recorder = std::make_unique<TimelineRecorder>(grid, 50.0);
  std::vector<TimelineSample> captured;
  grid.engine().schedule_at(175.0, [&] {
    captured = recorder->samples();
    recorder.reset();
  });
  grid.run();
  // Samples at 0, 50, 100, 150 were taken; nothing after the teardown.
  EXPECT_EQ(captured.size(), 4u);
  EXPECT_DOUBLE_EQ(captured.back().time, 150.0);
}

}  // namespace
}  // namespace chicsim::core
