// Tests of the output-return extension (SimulationConfig::output_fraction)
// and the backbone-bandwidth knob.
#include <gtest/gtest.h>

#include "core/grid.hpp"

namespace chicsim::core {
namespace {

SimulationConfig output_config(double fraction) {
  SimulationConfig cfg;
  cfg.num_users = 12;
  cfg.num_sites = 6;
  cfg.num_regions = 3;
  cfg.num_datasets = 30;
  cfg.total_jobs = 120;
  cfg.storage_capacity_mb = 20000.0;
  cfg.output_fraction = fraction;
  cfg.es = EsAlgorithm::JobDataPresent;  // jobs mostly run away from home
  cfg.ds = DsAlgorithm::DataLeastLoaded;
  cfg.replication_threshold = 3.0;
  cfg.seed = 13;
  return cfg;
}

TEST(OutputModel, DisabledByDefaultMatchesPaperSemantics) {
  SimulationConfig cfg = output_config(0.0);
  Grid grid(cfg);
  grid.run();
  EXPECT_DOUBLE_EQ(grid.metrics().avg_output_per_job_mb, 0.0);
  EXPECT_DOUBLE_EQ(grid.metrics().avg_output_wait_s, 0.0);
  for (site::JobId id = 1; id <= cfg.total_jobs; ++id) {
    EXPECT_DOUBLE_EQ(grid.job(id).finish_time, grid.job(id).compute_done_time);
  }
}

TEST(OutputModel, OutputTrafficIsAccounted) {
  SimulationConfig cfg = output_config(0.1);
  Grid grid(cfg);
  grid.run();
  const RunMetrics& m = grid.metrics();
  EXPECT_GT(m.avg_output_per_job_mb, 0.0);
  EXPECT_GT(m.avg_output_wait_s, 0.0);
  // Output of a job that ran away from home is fraction x input size.
  // Averaged over jobs (some run at the origin and ship nothing), the
  // per-job output is bounded by fraction x max input size.
  EXPECT_LE(m.avg_output_per_job_mb, 0.1 * 2000.0);
}

TEST(OutputModel, FinishFollowsComputeDoneAndTimestampsStayCoherent) {
  SimulationConfig cfg = output_config(0.5);
  Grid grid(cfg);
  grid.run();
  bool some_shipping = false;
  for (site::JobId id = 1; id <= cfg.total_jobs; ++id) {
    const site::Job& job = grid.job(id);
    EXPECT_EQ(job.state, site::JobState::Completed);
    EXPECT_GE(job.compute_done_time, job.start_time);
    EXPECT_GE(job.finish_time, job.compute_done_time);
    EXPECT_NEAR(job.compute_done_time - job.start_time, job.runtime_s, 1e-6);
    if (job.exec_site != job.origin_site) {
      EXPECT_GT(job.finish_time, job.compute_done_time);
      some_shipping = true;
    } else {
      EXPECT_DOUBLE_EQ(job.finish_time, job.compute_done_time);
    }
  }
  EXPECT_TRUE(some_shipping);
}

TEST(OutputModel, JobsAtOriginShipNothing) {
  SimulationConfig cfg = output_config(0.5);
  cfg.es = EsAlgorithm::JobLocal;
  Grid grid(cfg);
  grid.run();
  EXPECT_DOUBLE_EQ(grid.metrics().avg_output_per_job_mb, 0.0);
  EXPECT_DOUBLE_EQ(grid.metrics().avg_output_wait_s, 0.0);
}

TEST(OutputModel, LargerOutputsSlowTheRun) {
  Grid small(output_config(0.05));
  small.run();
  Grid large(output_config(1.0));
  large.run();
  EXPECT_GT(large.metrics().avg_response_time_s, small.metrics().avg_response_time_s);
}

TEST(OutputModel, NegativeFractionRejected) {
  SimulationConfig cfg = output_config(-0.1);
  EXPECT_THROW(cfg.validate(), util::SimError);
}

TEST(Backbone, MultiplierFattensRootLinks) {
  net::Topology topo = net::build_hierarchy({6, 3, 10.0, 5.0});
  // Region links to root are the first 3 links added (root-region order).
  std::size_t fat = 0;
  std::size_t thin = 0;
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    if (topo.link(l).bandwidth_mbps == 50.0) ++fat;
    if (topo.link(l).bandwidth_mbps == 10.0) ++thin;
  }
  EXPECT_EQ(fat, 3u);   // backbone
  EXPECT_EQ(thin, 6u);  // site links
}

TEST(Backbone, FatterBackboneHelpsCrossRegionTraffic) {
  SimulationConfig cfg = output_config(0.0);
  cfg.es = EsAlgorithm::JobRandom;  // lots of cross-region fetches
  cfg.ds = DsAlgorithm::DataDoNothing;
  Grid uniform(cfg);
  uniform.run();
  cfg.backbone_bandwidth_multiplier = 10.0;
  Grid fat(cfg);
  fat.run();
  EXPECT_LE(fat.metrics().avg_response_time_s,
            uniform.metrics().avg_response_time_s * 1.02);
}

TEST(Backbone, InvalidMultiplierRejected) {
  SimulationConfig cfg = output_config(0.0);
  cfg.backbone_bandwidth_multiplier = 0.0;
  EXPECT_THROW(cfg.validate(), util::SimError);
}

}  // namespace
}  // namespace chicsim::core
