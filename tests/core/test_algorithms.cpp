#include "core/algorithms.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace chicsim::core {
namespace {

TEST(Algorithms, EsRoundTripThroughStrings) {
  for (EsAlgorithm a : all_es_algorithms()) {
    EXPECT_EQ(es_from_string(to_string(a)), a);
  }
}

TEST(Algorithms, DsRoundTripThroughStrings) {
  for (DsAlgorithm a : all_ds_algorithms()) {
    EXPECT_EQ(ds_from_string(to_string(a)), a);
  }
}

TEST(Algorithms, ParsingIsCaseInsensitive) {
  EXPECT_EQ(es_from_string("jobdatapresent"), EsAlgorithm::JobDataPresent);
  EXPECT_EQ(ds_from_string("DATARANDOM"), DsAlgorithm::DataRandom);
  EXPECT_EQ(ls_from_string("fifo"), LsAlgorithm::Fifo);
  EXPECT_EQ(replica_selection_from_string("closest"), ReplicaSelection::Closest);
  EXPECT_EQ(neighbor_scope_from_string("region"), NeighborScope::Region);
}

TEST(Algorithms, UnknownNamesThrow) {
  EXPECT_THROW((void)es_from_string("JobMagic"), util::SimError);
  EXPECT_THROW((void)ds_from_string(""), util::SimError);
  EXPECT_THROW((void)ls_from_string("lifo"), util::SimError);
  EXPECT_THROW((void)replica_selection_from_string("furthest"), util::SimError);
  EXPECT_THROW((void)neighbor_scope_from_string("planet"), util::SimError);
}

TEST(Algorithms, PaperFamiliesMatchSection4) {
  // "We thus have a total of 4x3=12 algorithms to evaluate."
  EXPECT_EQ(paper_es_algorithms().size(), 4u);
  EXPECT_EQ(paper_ds_algorithms().size(), 3u);
  EXPECT_EQ(paper_es_algorithms().front(), EsAlgorithm::JobRandom);
  EXPECT_EQ(paper_es_algorithms().back(), EsAlgorithm::JobLocal);
  EXPECT_EQ(paper_ds_algorithms().front(), DsAlgorithm::DataDoNothing);
}

TEST(Algorithms, ExtensionsAreSupersets) {
  EXPECT_GT(all_es_algorithms().size(), paper_es_algorithms().size());
  EXPECT_GT(all_ds_algorithms().size(), paper_ds_algorithms().size());
  for (EsAlgorithm a : paper_es_algorithms()) {
    bool found = false;
    for (EsAlgorithm b : all_es_algorithms()) found = found || a == b;
    EXPECT_TRUE(found);
  }
}

TEST(Algorithms, LsAndScopeNames) {
  EXPECT_STREQ(to_string(LsAlgorithm::FifoSkip), "FifoSkip");
  EXPECT_STREQ(to_string(ReplicaSelection::LeastLoadedSource), "LeastLoadedSource");
  EXPECT_STREQ(to_string(NeighborScope::Grid), "Grid");
}

}  // namespace
}  // namespace chicsim::core
