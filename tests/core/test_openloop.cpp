// Tests of the open-loop submission extension.
#include <gtest/gtest.h>

#include "core/grid.hpp"

namespace chicsim::core {
namespace {

SimulationConfig openloop_config(double interval) {
  SimulationConfig cfg;
  cfg.num_users = 12;
  cfg.num_sites = 6;
  cfg.num_regions = 3;
  cfg.num_datasets = 30;
  cfg.total_jobs = 120;
  cfg.storage_capacity_mb = 20000.0;
  cfg.submission_mode = SubmissionMode::OpenLoop;
  cfg.arrival_interval_s = interval;
  cfg.es = EsAlgorithm::JobDataPresent;
  cfg.ds = DsAlgorithm::DataLeastLoaded;
  cfg.replication_threshold = 3.0;
  cfg.seed = 51;
  return cfg;
}

TEST(OpenLoop, AllJobsCompleteAndAuditHolds) {
  Grid grid(openloop_config(400.0));
  grid.run();
  EXPECT_EQ(grid.metrics().jobs_completed, 120u);
  grid.audit();
}

TEST(OpenLoop, SubmissionsAreDecoupledFromCompletions) {
  // At a high rate, some user's job k+1 must have been submitted before
  // job k finished — impossible in the paper's closed loop.
  SimulationConfig cfg = openloop_config(50.0);
  Grid grid(cfg);
  grid.run();
  bool overlapping = false;
  for (site::UserId u = 0; u < cfg.num_users && !overlapping; ++u) {
    for (std::size_t k = 1; k < cfg.jobs_per_user(); ++k) {
      site::JobId prev = u * cfg.jobs_per_user() + k;      // 1-based ids
      site::JobId next = prev + 1;
      if (grid.job(next).submit_time < grid.job(prev).finish_time - 1e-9) {
        overlapping = true;
        break;
      }
    }
  }
  EXPECT_TRUE(overlapping);
}

TEST(OpenLoop, NoThunderingHerdAtTimeZero) {
  SimulationConfig cfg = openloop_config(400.0);
  Grid grid(cfg);
  grid.run();
  for (site::JobId id = 1; id <= cfg.total_jobs; ++id) {
    EXPECT_GT(grid.job(id).submit_time, 0.0);
  }
}

TEST(OpenLoop, PerUserSubmissionsRemainOrdered) {
  SimulationConfig cfg = openloop_config(100.0);
  Grid grid(cfg);
  grid.run();
  for (site::UserId u = 0; u < cfg.num_users; ++u) {
    for (std::size_t k = 1; k < cfg.jobs_per_user(); ++k) {
      site::JobId prev = u * cfg.jobs_per_user() + k;
      EXPECT_LE(grid.job(prev).submit_time, grid.job(prev + 1).submit_time);
    }
  }
}

TEST(OpenLoop, HigherLoadMeansLongerResponses) {
  Grid light(openloop_config(2000.0));
  light.run();
  Grid heavy(openloop_config(60.0));
  heavy.run();
  EXPECT_GT(heavy.metrics().avg_response_time_s, light.metrics().avg_response_time_s);
}

TEST(OpenLoop, MeanInterarrivalApproximatesConfiguration) {
  SimulationConfig cfg = openloop_config(300.0);
  Grid grid(cfg);
  grid.run();
  // Average gap between a user's consecutive submissions ~ Exp(300) mean.
  double total_gap = 0.0;
  std::size_t gaps = 0;
  for (site::UserId u = 0; u < cfg.num_users; ++u) {
    for (std::size_t k = 1; k < cfg.jobs_per_user(); ++k) {
      site::JobId prev = u * cfg.jobs_per_user() + k;
      total_gap += grid.job(prev + 1).submit_time - grid.job(prev).submit_time;
      ++gaps;
    }
  }
  EXPECT_NEAR(total_gap / static_cast<double>(gaps), 300.0, 90.0);
}

TEST(OpenLoop, ClosedLoopRemainsTheDefault) {
  SimulationConfig cfg;
  EXPECT_EQ(cfg.submission_mode, SubmissionMode::ClosedLoop);
}

TEST(OpenLoop, ConfigParsesModeAndInterval) {
  SimulationConfig cfg;
  cfg.apply(util::ConfigFile::parse("submission_mode = OpenLoop\narrival_interval_s = 42\n"));
  EXPECT_EQ(cfg.submission_mode, SubmissionMode::OpenLoop);
  EXPECT_DOUBLE_EQ(cfg.arrival_interval_s, 42.0);
  cfg.arrival_interval_s = 0.0;
  EXPECT_THROW(cfg.validate(), util::SimError);
}

}  // namespace
}  // namespace chicsim::core
